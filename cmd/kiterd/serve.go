package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// serveHTTP runs the HTTP front-end until a fatal listener error or a
// termination signal, then drains. Binding happens synchronously here —
// before markReady — so a bad -addr or -pprof-addr returns an error
// through run()'s defers (cache backend flushed and closed, -stats-out
// written) instead of exiting from a goroutine with cleanup skipped.
//
// On SIGTERM/SIGINT the shutdown sequence is:
//
//  1. startDrain: readiness flips to 503 and /analyze, /sweep and
//     /cluster/evaluate refuse new submissions (Retry-After set), while
//     requests already admitted — including streaming sweeps — continue.
//  2. A short grace pause (drainTimeout/4, at most 1s) lets load
//     balancers observe the failing readiness probe before the listener
//     stops accepting.
//  3. http.Server.Shutdown waits for in-flight requests under the
//     remaining -drain-timeout budget; past it, connections are cut.
//
// Returning nil then unwinds run()'s defers in LIFO order: the final
// stats snapshot is written, the engine closes (flushing the cache
// backend), the cluster prober stops — and the process exits 0.
func serveHTTP(srv *server, addr, pprofAddr string, drainTimeout time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", addr, err)
	}
	hs := &http.Server{
		Handler: srv,
		// Header and full-request reads are bounded so an idle or trickling
		// client cannot pin a connection open indefinitely. WriteTimeout
		// stays 0 on purpose: /sweep streams NDJSON for as long as the
		// scenario family takes, bounded per scenario by -timeout instead.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	var pprofSrv *http.Server
	if pprofAddr != "" {
		// pprof lives on its own listener so profiling endpoints are never
		// reachable through the serving address. Its bind failure is fatal
		// like the main one: silently serving without requested profiling
		// would hide the misconfiguration.
		pln, perr := net.Listen("tcp", pprofAddr)
		if perr != nil {
			ln.Close()
			return fmt.Errorf("pprof listener: %w", perr)
		}
		pprofSrv = &http.Server{Handler: pprofMux(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := pprofSrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "kiterd: pprof listener:", err)
			}
		}()
		defer pprofSrv.Close()
		fmt.Printf("kiterd: pprof on %s\n", pln.Addr())
	}
	fmt.Printf("kiterd: listening on %s (%d workers)\n", ln.Addr(), srv.e.Stats().Workers)
	srv.markReady()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	var sig os.Signal
	select {
	case err := <-serveErr:
		// Serve only returns on listener failure (it never returns nil);
		// surface it through run() so cleanup still happens.
		return fmt.Errorf("serving on %s: %w", addr, err)
	case sig = <-sigCh:
	}
	fmt.Fprintf(os.Stderr, "kiterd: %s received, draining (budget %s)\n", sig, drainTimeout)

	srv.startDrain()
	if grace := min(drainTimeout/4, time.Second); grace > 0 {
		time.Sleep(grace)
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "kiterd: drain budget exceeded, cutting connections:", err)
		hs.Close()
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	fmt.Fprintln(os.Stderr, "kiterd: drained")
	return nil
}
