package main

import (
	"net/http"
	"net/http/pprof"
)

// pprofMux builds the profiling mux mounted on -pprof-addr. The handlers
// are registered explicitly on a private mux instead of importing the
// package for its DefaultServeMux side effect, so profiling stays off the
// serving listener and off by default.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
