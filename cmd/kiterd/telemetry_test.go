package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"kiter/internal/engine"
	"kiter/internal/sweep"
	"kiter/internal/telemetry"
)

// newObsServer builds a server with the full observability wiring of a real
// kiterd process: a shared registry feeding the engine instruments, the
// scrape-time stats collector and the /metrics endpoint.
func newObsServer(t *testing.T, tl *telemetry.TraceLog) *server {
	t.Helper()
	reg := telemetry.NewRegistry()
	e := engine.New(engine.Config{Workers: 4, Metrics: reg})
	t.Cleanup(e.Close)
	registerEngineCollector(reg, e)
	registerBuildInfo(reg, readBuildInfo())
	return newServer(e, testTemplate(), nil, observability{reg: reg, traceLog: tl})
}

// scrape GETs /metrics and returns the exposition body.
func scrape(t *testing.T, srv *server) string {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d, body %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	return rec.Body.String()
}

func postAnalyze(t *testing.T, srv *server, path string) analyzeResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, bytes.NewReader(graphBody(t))))
	if rec.Code != http.StatusOK {
		t.Fatalf("%s status = %d, body %s", path, rec.Code, rec.Body)
	}
	var resp analyzeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestMetricsEndpoint is the scrape acceptance path: after real traffic,
// GET /metrics carries every expected family, and each histogram's
// cumulative bucket counts are monotone with the +Inf bucket equal to the
// sample count.
func TestMetricsEndpoint(t *testing.T) {
	srv := newObsServer(t, nil)
	postAnalyze(t, srv, "/analyze")
	postAnalyze(t, srv, "/analyze") // second hit exercises the cache counters

	body := scrape(t, srv)
	for _, family := range []string{
		"kiter_http_request_seconds",
		"kiter_engine_queue_wait_seconds",
		"kiter_engine_evaluation_seconds",
		"kiter_engine_cache_lookup_seconds",
		"kiter_solver_solve_seconds",
		"kiter_engine_submitted_total",
		"kiter_engine_cache_hits_total",
		"kiter_engine_evaluations_total",
		"kiter_race_wins_total",
		"kiter_engine_workers",
		"kiter_build_info",
	} {
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("scrape missing family %s", family)
		}
	}
	if !strings.Contains(body, `kiter_engine_submitted_total 2`) {
		t.Errorf("submitted_total != 2 in scrape:\n%s", grepLines(body, "submitted_total"))
	}
	if !strings.Contains(body, `kiter_http_request_seconds_count{endpoint="/analyze",code="200"} 2`) {
		t.Errorf("http histogram count missing:\n%s", grepLines(body, "kiter_http_request_seconds_count"))
	}
	checkHistogramMonotone(t, body, "kiter_engine_evaluation_seconds")
	checkHistogramMonotone(t, body, "kiter_http_request_seconds")
}

// grepLines filters an exposition body for error messages.
func grepLines(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// checkHistogramMonotone asserts the Prometheus histogram contract on one
// family: bucket counts are cumulative (non-decreasing in le order, which
// is emission order) and the final +Inf bucket matches _count.
func checkHistogramMonotone(t *testing.T, body, family string) {
	t.Helper()
	var prev float64
	var lastBucket, count float64
	var sawBucket, sawInf bool
	for _, line := range strings.Split(body, "\n") {
		switch {
		case strings.HasPrefix(line, family+"_bucket"):
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("unparseable bucket line %q: %v", line, err)
			}
			if strings.Contains(line, `le="+Inf"`) {
				sawInf, prev = true, 0 // family may have several label sets
			} else if v < prev {
				t.Fatalf("non-monotone cumulative buckets in %s: %q after %g", family, line, prev)
			} else {
				prev = v
			}
			lastBucket = v
			sawBucket = true
		case strings.HasPrefix(line, family+"_count"):
			fields := strings.Fields(line)
			count, _ = strconv.ParseFloat(fields[len(fields)-1], 64)
			if sawInf && count != lastBucket {
				t.Fatalf("%s: +Inf bucket %g != count %g", family, lastBucket, count)
			}
		}
	}
	if !sawBucket || !sawInf {
		t.Fatalf("no buckets (or no +Inf bucket) found for %s", family)
	}
	if count == 0 {
		t.Fatalf("%s observed no samples", family)
	}
}

// TestAnalyzeTrace exercises POST /analyze?trace=1: the reply carries a
// request ID and a span tree whose phases (cache lookup, queue wait,
// analysis sections) sum to no more than the root's wall time.
func TestAnalyzeTrace(t *testing.T) {
	srv := newObsServer(t, nil)
	resp := postAnalyze(t, srv, "/analyze?trace=1")
	if resp.RequestID == "" {
		t.Fatal("traced response carries no requestId")
	}
	if resp.Trace == nil {
		t.Fatal("traced response carries no span tree")
	}
	if resp.Trace.Name != "analyze" {
		t.Fatalf("root span = %q, want analyze", resp.Trace.Name)
	}
	names := map[string]bool{}
	var childSum float64
	for _, c := range resp.Trace.Children {
		names[c.Name] = true
		childSum += c.DurMS
	}
	for _, want := range []string{"cache.lookup", "queue.wait", "analysis.throughput"} {
		if !names[want] {
			t.Errorf("trace missing %s child; have %v", want, resp.Trace.Children)
		}
	}
	// The direct children run sequentially (lookup → queue → analyses), so
	// their durations fit inside the root span; 1ms of slack absorbs clock
	// granularity on the individual measurements.
	if childSum > resp.Trace.DurMS+1.0 {
		t.Fatalf("children sum %.3fms exceeds root %.3fms", childSum, resp.Trace.DurMS)
	}

	// The analysis section contains the actual solve phase.
	var throughput *telemetry.SpanNode
	for _, c := range resp.Trace.Children {
		if c.Name == "analysis.throughput" {
			throughput = c
		}
	}
	var sawSolve bool
	for _, c := range throughput.Children {
		if strings.HasPrefix(c.Name, "race") || strings.HasPrefix(c.Name, "solve.") {
			sawSolve = true
		}
	}
	if !sawSolve {
		t.Fatalf("analysis.throughput has no race/solve child: %+v", throughput.Children)
	}

	// An untraced request stays clean: no requestId, no tree.
	plain := postAnalyze(t, srv, "/analyze")
	if plain.RequestID != "" || plain.Trace != nil {
		t.Fatal("untraced response carries trace fields")
	}
}

// TestTraceLogNDJSON boots a server with -trace-log wiring and checks every
// analyze request appends one parseable NDJSON record with a distinct
// request ID — including requests that did not ask for ?trace=1.
func TestTraceLogNDJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traces.ndjson")
	tl, err := telemetry.OpenTraceLog(path)
	if err != nil {
		t.Fatal(err)
	}
	srv := newObsServer(t, tl)
	postAnalyze(t, srv, "/analyze?trace=1")
	postAnalyze(t, srv, "/analyze")
	if err := tl.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace log has %d lines, want 2:\n%s", len(lines), data)
	}
	seen := map[string]bool{}
	for _, line := range lines {
		var rec telemetry.TraceRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable trace line %q: %v", line, err)
		}
		if rec.RequestID == "" || rec.Endpoint != "/analyze" || rec.Trace == nil {
			t.Fatalf("incomplete trace record: %+v", rec)
		}
		if seen[rec.RequestID] {
			t.Fatalf("duplicate request ID %s", rec.RequestID)
		}
		seen[rec.RequestID] = true
	}
}

// TestReadinessSplit checks the probe split: plain /healthz answers 200
// from construction (cluster peers probe it to re-admit a live replica),
// while /healthz?ready=1 holds 503 until markReady.
func TestReadinessSplit(t *testing.T) {
	srv := newTestServer(t)
	get := func(path string) int {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("liveness before ready = %d, want 200", got)
	}
	if got := get("/healthz?ready=1"); got != http.StatusServiceUnavailable {
		t.Fatalf("readiness before ready = %d, want 503", got)
	}
	srv.markReady()
	if got := get("/healthz?ready=1"); got != http.StatusOK {
		t.Fatalf("readiness after ready = %d, want 200", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("liveness after ready = %d, want 200", got)
	}
}

// TestStatsBuildInfo checks /stats carries the version block satellite.
func TestStatsBuildInfo(t *testing.T) {
	srv := newTestServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats status = %d", rec.Code)
	}
	var resp struct {
		Build buildInfo `json:"build"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Build.GoVersion == "" || resp.Build.Version == "" {
		t.Fatalf("stats build block incomplete: %+v", resp.Build)
	}
}

// TestScrapeDuringSweep is the torn-read regression: /stats and /metrics
// are scraped continuously while a sweep saturates the engine. Run under
// -race this flushes unsynchronized counter access; the assertions check
// that snapshot counters only ever move forward (the Delta/clamp contract).
func TestScrapeDuringSweep(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := engine.New(engine.Config{Workers: 4, Metrics: reg})
	t.Cleanup(e.Close)
	registerEngineCollector(reg, e)
	tmpl := testTemplate()
	tmpl.Method = engine.MethodKIter
	srv := newServer(e, tmpl, nil, observability{reg: reg})

	body, err := json.Marshal(sweep.VideoPipelineSpec(6, 6)) // 36 scenarios
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/sweep", bytes.NewReader(body)))
	}()

	var wg sync.WaitGroup
	for range 2 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev engine.Stats
			for {
				select {
				case <-done:
					return
				default:
				}
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
				var s engine.Stats
				if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
					t.Errorf("decoding /stats mid-sweep: %v", err)
					return
				}
				if s.Submitted < prev.Submitted || s.Evaluations < prev.Evaluations ||
					s.CacheHits < prev.CacheHits || s.CacheMisses < prev.CacheMisses {
					t.Errorf("counters moved backwards: %+v then %+v", prev, s)
					return
				}
				// Delta against the previous snapshot must never wrap.
				d := s.Delta(prev)
				if d.Submitted > s.Submitted || d.Evaluations > s.Evaluations {
					t.Errorf("delta exceeds cumulative: %+v", d)
					return
				}
				prev = s

				rec = httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("/metrics mid-sweep status = %d", rec.Code)
					return
				}
			}
		}()
	}
	<-done
	wg.Wait()

	// Post-sweep, the scrape reflects the completed work.
	body2 := scrape(t, srv)
	if !strings.Contains(body2, "kiter_solver_kiter_rounds_count") {
		t.Errorf("post-sweep scrape missing solver rounds histogram")
	}
	checkHistogramMonotone(t, body2, "kiter_engine_evaluation_seconds")
}
