package main

import (
	"net/http"
	"sort"
	"strconv"
	"strings"

	"kiter/internal/telemetry"
)

// traceSummary is one row of the GET /debug/traces listing: a trace's
// request metadata without its span tree, which can be large — pull the
// tree via /debug/traces/{id}.
type traceSummary struct {
	TraceID       string  `json:"traceId"`
	RequestID     string  `json:"requestId,omitempty"`
	Endpoint      string  `json:"endpoint"`
	Process       string  `json:"process,omitempty"`
	Status        int     `json:"status,omitempty"`
	Error         bool    `json:"error,omitempty"`
	StartUnixNano int64   `json:"startUnixNano"`
	DurMS         float64 `json:"durMs"`
}

// defaultTraceListLimit bounds an unqualified listing.
const defaultTraceListLimit = 64

// handleDebugTraces serves GET /debug/traces: the flight recorder's
// retained traces, newest first, as summaries. ?limit=N bounds the listing
// (default 64); ?errors=1 filters to errored traces.
func (s *server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	limit := defaultTraceListLimit
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	onlyErrors := boolParam(r, "errors")
	recs := s.obs.recorder.List(0)
	sums := make([]traceSummary, 0, len(recs))
	for _, rec := range recs {
		if onlyErrors && !rec.Error {
			continue
		}
		if len(sums) == limit {
			break
		}
		sums = append(sums, traceSummary{
			TraceID:       rec.TraceID,
			RequestID:     rec.RequestID,
			Endpoint:      rec.Endpoint,
			Process:       rec.Process,
			Status:        rec.Status,
			Error:         rec.Error,
			StartUnixNano: rec.StartUnixNano,
			DurMS:         rec.DurMS,
		})
	}
	writeJSONIndent(w, http.StatusOK, map[string]any{
		"recorded": s.obs.recorder.Added(),
		"retained": len(recs),
		"traces":   sums,
	})
}

// handleDebugTrace serves GET /debug/traces/{id}. The plain form returns
// this process's records for the trace — the shape peers consume during a
// fleet stitch. With ?fleet=1 it also asks every alive peer for their
// records of the same trace and stitches all subtrees into one logical
// tree spanning processes: remote handler roots graft under the local
// client spans whose IDs they carry as parents.
func (s *server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
	if id == "" || strings.Contains(id, "/") {
		httpError(w, http.StatusNotFound, "trace id required")
		return
	}
	records := s.obs.recorder.Get(id)
	if !boolParam(r, "fleet") {
		if len(records) == 0 {
			httpError(w, http.StatusNotFound, "trace %s not recorded here", id)
			return
		}
		writeJSONIndent(w, http.StatusOK, map[string]any{
			"traceId": id,
			"records": records,
		})
		return
	}
	if s.cl != nil {
		records = append(records, s.cl.FetchTraces(r.Context(), id)...)
	}
	if len(records) == 0 {
		httpError(w, http.StatusNotFound, "trace %s not recorded anywhere reachable", id)
		return
	}
	procs := map[string]bool{}
	for _, rec := range records {
		if rec.Process != "" {
			procs[rec.Process] = true
		}
	}
	processes := make([]string, 0, len(procs))
	for p := range procs {
		processes = append(processes, p)
	}
	sort.Strings(processes)
	roots, detached := telemetry.Stitch(records)
	writeJSONIndent(w, http.StatusOK, map[string]any{
		"traceId":   id,
		"processes": processes,
		"records":   len(records),
		"detached":  detached,
		"spans":     roots,
	})
}
