package main

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// buildInfo is the version block reported by -version, GET /stats and the
// kiter_build_info metric. Values come from debug.ReadBuildInfo, so a
// `go build`-produced binary reports its module version and VCS revision
// without any ldflags ceremony.
type buildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"goVersion"`
	Revision  string `json:"revision,omitempty"`
	BuildTime string `json:"buildTime,omitempty"`
	Modified  bool   `json:"dirty,omitempty"`
}

// readBuildInfo extracts the version block from the running binary.
// Binaries built without module support (go test in odd modes) degrade to
// the runtime's Go version and "(devel)".
func readBuildInfo() buildInfo {
	b := buildInfo{Version: "(devel)", GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if info.Main.Version != "" {
		b.Version = info.Main.Version
	}
	if info.GoVersion != "" {
		b.GoVersion = info.GoVersion
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.BuildTime = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// printVersion renders the -version flag output.
func printVersion(w io.Writer, b buildInfo) {
	fmt.Fprintf(w, "kiterd %s (%s)", b.Version, b.GoVersion)
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(w, " rev %s", rev)
		if b.Modified {
			fmt.Fprint(w, "-dirty")
		}
	}
	fmt.Fprintln(w)
}
