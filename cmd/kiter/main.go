// Command kiter evaluates the throughput of a CSDF graph with the methods
// of the paper: K-Iter (exact, default), the 1-periodic approximation, the
// K = q expansion and symbolic execution.
//
// Usage:
//
//	kiter -file app.json                  # K-Iter on a graph file
//	kiter -file app.xml -method all       # compare every method
//	kiter -fixture figure2 -trace         # run the paper's running example
//	kiter -file app.json -capacities      # apply declared buffer capacities
//	kiter -file app.json -schedule 2      # print a 2-iteration Gantt chart
//	kiter -file app.json -dot out.dot     # export Graphviz
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kiter"
	"kiter/internal/bench"
	"kiter/internal/csdf"
	"kiter/internal/gen"
)

func main() {
	var (
		file       = flag.String("file", "", "graph file (.json or .xml)")
		fixture    = flag.String("fixture", "", "built-in graph: figure2, samplerate, satellite, h263, modem, mp3")
		method     = flag.String("method", "kiter", "kiter | periodic | expansion | symbolic | all")
		capacities = flag.Bool("capacities", false, "apply declared buffer capacities (reverse-buffer encoding)")
		schedule   = flag.Int64("schedule", 0, "print a Gantt chart over N graph iterations of the optimal schedule")
		trace      = flag.Bool("trace", false, "print the ASAP (self-timed) schedule prefix")
		dotOut     = flag.String("dot", "", "write the graph in Graphviz DOT format to this file")
		width      = flag.Int("width", 100, "Gantt chart width in characters")
		symBudget  = flag.Int64("symbolic-budget", 0, "symbolic execution event budget (0 = default)")
	)
	flag.Parse()
	if err := run(*file, *fixture, *method, *capacities, *schedule, *trace, *dotOut, *width, *symBudget); err != nil {
		fmt.Fprintln(os.Stderr, "kiter:", err)
		os.Exit(1)
	}
}

func run(file, fixture, method string, capacities bool, schedule int64, trace bool, dotOut string, width int, symBudget int64) error {
	g, err := loadGraph(file, fixture)
	if err != nil {
		return err
	}
	if capacities {
		bounded, err := g.WithCapacities()
		if err != nil {
			return fmt.Errorf("applying capacities: %w", err)
		}
		g = bounded
	}
	fmt.Printf("graph: %s\n", g.ComputeStats())
	if dotOut != "" {
		f, err := os.Create(dotOut)
		if err != nil {
			return err
		}
		if err := g.WriteDOT(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", dotOut)
	}

	methods := []bench.Method{bench.Method(method)}
	if method == "all" {
		methods = bench.Methods()
	}
	lim := bench.Limits{SymbolicMaxEvents: symBudget}
	var optimal *kiter.Result
	for _, m := range methods {
		switch m {
		case bench.MethodKIter:
			start := time.Now()
			res, err := kiter.Throughput(g)
			elapsed := time.Since(start)
			if err != nil {
				fmt.Printf("%-10s error: %v\n", m, err)
				continue
			}
			optimal = res
			fmt.Printf("%-10s Ω = %-14s Th = %-14s K = %v  (%d iterations, %v)\n",
				m, res.Period, res.Throughput, res.K, res.Iterations, elapsed)
		default:
			out := bench.Run(g, m, lim)
			if out.Err != nil {
				fmt.Printf("%-10s error: %v\n", m, out.Err)
				continue
			}
			fmt.Printf("%-10s Ω = %-14s Th = %-14s (%v)\n",
				m, out.Period, out.Period.Inv(), out.Elapsed)
		}
	}

	if schedule > 0 {
		if optimal == nil {
			res, err := kiter.Throughput(g)
			if err != nil {
				return err
			}
			optimal = res
		}
		s, err := kiter.BuildSchedule(g, optimal.K, kiter.Options{})
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(kiter.GanttFromSchedule(g, s, schedule, "optimal K-periodic schedule").Render(width))
		fmt.Printf("iteration latency: %s\n", kiter.IterationLatency(g, s))
	}
	if trace {
		horizon := int64(4)
		if optimal != nil {
			horizon, _ = optimal.Period.Mul(kiter.IntRat(2)).Int64()
			if horizon < 4 {
				horizon = 4
			}
		}
		firings, dead, err := kiter.Simulate(g, horizon)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(kiter.GanttFromTrace(g, firings, "ASAP (self-timed) schedule").Render(width))
		if dead {
			fmt.Println("execution deadlocks")
		}
	}
	return nil
}

func loadGraph(file, fixture string) (*csdf.Graph, error) {
	switch {
	case file != "":
		return kiter.ReadFile(file)
	case fixture != "":
		switch fixture {
		case "figure2":
			return gen.Figure2(), nil
		case "samplerate":
			return gen.SampleRateConverter(), nil
		case "satellite":
			return gen.SatelliteReceiver(), nil
		case "h263":
			return gen.H263Decoder(), nil
		case "modem":
			return gen.Modem(), nil
		case "mp3":
			return gen.MP3Playback(), nil
		default:
			return nil, fmt.Errorf("unknown fixture %q", fixture)
		}
	default:
		return nil, fmt.Errorf("need -file or -fixture (try -fixture figure2)")
	}
}
