// Command figures regenerates the paper's figures (1–5) on the terminal:
// the Figure 1 buffer and its precedence example, the Figure 2 running
// example with its repetition vector, the Figure 3 ASAP schedule, the
// Figure 4 K-periodic schedule, and the Figure 5 bi-valued graph with its
// critical circuit. See EXPERIMENTS.md for the paper-vs-measured notes.
package main

import (
	"flag"
	"fmt"
	"os"

	"kiter"
	"kiter/internal/csdf"
	"kiter/internal/gen"
	"kiter/internal/kperiodic"
)

func main() {
	fig := flag.Int("fig", 0, "figure number 1..5 (0 = all)")
	width := flag.Int("width", 110, "Gantt width in characters")
	flag.Parse()
	if err := run(*fig, *width); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(fig, width int) error {
	funcs := map[int]func(int) error{1: figure1, 2: figure2, 3: figure3, 4: figure4, 5: figure5}
	if fig != 0 {
		f, ok := funcs[fig]
		if !ok {
			return fmt.Errorf("unknown figure %d", fig)
		}
		return f(width)
	}
	for i := 1; i <= 5; i++ {
		if err := funcs[i](width); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func figure1(int) error {
	fmt.Println("=== Figure 1: a simple buffer b between tasks t and t' ===")
	g, bid := gen.Figure1()
	b := g.Buffer(bid)
	fmt.Printf("in_b = %v  out_b = %v  M0 = %d  (i_b = %d, o_b = %d)\n",
		b.In, b.Out, b.Initial, b.TotalIn(), b.TotalOut())
	ia := csdf.CumulativeIn(b, 1, 2)
	oa := csdf.CumulativeOut(b, 2, 1)
	fmt.Printf("precedence example: M0 + Ia⟨t1,2⟩ − Oa⟨t'2,1⟩ = %d + %d − %d = %d ≥ 0 ✓\n",
		b.Initial, ia, oa, b.Initial+ia-oa)
	return nil
}

func figure2(int) error {
	fmt.Println("=== Figure 2: the running example CSDFG ===")
	g := gen.Figure2()
	if err := g.WriteDOT(os.Stdout); err != nil {
		return err
	}
	q, err := g.RepetitionVector()
	if err != nil {
		return err
	}
	fmt.Printf("repetition vector q = %v (Σq = %d)\n", q, sum(q))
	return nil
}

func figure3(width int) error {
	fmt.Println("=== Figure 3: as-soon-as-possible (self-timed) schedule ===")
	g := gen.Figure2()
	trace, dead, err := kiter.Simulate(g, 26)
	if err != nil {
		return err
	}
	fmt.Print(kiter.GanttFromTrace(g, trace, "ASAP schedule, first 26 time units").Render(width))
	if dead {
		fmt.Println("(execution deadlocks)")
	}
	return nil
}

func figure4(width int) error {
	fmt.Println("=== Figure 4: optimal K-periodic schedule ===")
	g := gen.Figure2()
	res, err := kiter.Throughput(g)
	if err != nil {
		return err
	}
	s, err := kiter.BuildSchedule(g, res.K, kiter.Options{})
	if err != nil {
		return err
	}
	title := fmt.Sprintf("K-periodic schedule, K = %v, Ω = %s (1-periodic reaches only Ω = 18)", res.K, res.Period)
	fmt.Print(kiter.GanttFromSchedule(g, s, 2, title).Render(width))
	for t := 0; t < g.NumTasks(); t++ {
		fmt.Printf("  µ(%s) = %s\n", g.Task(csdf.TaskID(t)).Name, s.Mu[t])
	}
	return nil
}

func figure5(int) error {
	fmt.Println("=== Figure 5: bi-valued graph for K = [1,1,1,1] ===")
	g := gen.Figure2()
	K := []int64{1, 1, 1, 1}
	// Match the figure: buffer-induced arcs only (the figure omits the
	// sequential-phase arcs of tasks).
	arcs, err := kperiodic.BivaluedGraph(g, K, kiter.Options{AutoConcurrency: true})
	if err != nil {
		return err
	}
	for _, a := range arcs {
		fmt.Printf("  %s%d -> %s%d  (L=%d, H=%s)\n",
			g.Task(a.From.Task).Name, a.From.Phase,
			g.Task(a.To.Task).Name, a.To.Phase, a.L, a.H)
	}
	ev, err := kiter.ThroughputK(g, K, kiter.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("maximum cost-to-time ratio (with sequential phases): Ω_G̃ = %s\n",
		ev.Period.Mul(kiter.IntRat(1)))
	fmt.Printf("critical circuit tasks: %v (the paper's circuit {A1, D1, C1})\n", ev.CriticalTasks)
	return nil
}

func sum(v []int64) int64 {
	var s int64
	for _, x := range v {
		s += x
	}
	return s
}
