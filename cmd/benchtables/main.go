// Command benchtables regenerates the evaluation tables of the paper:
//
//	benchtables -table 1    # Table 1: SDFG categories × optimal methods
//	benchtables -table 2    # Table 2: CSDFG applications × methods
//
// Absolute times differ from the paper (different machine, Go vs C++, and
// generated stand-in benchmarks — see DESIGN.md); the shape to check is
// the ranking: periodic < K-Iter ≪ symbolic execution, with K-Iter always
// reaching 100% optimality.
package main

import (
	"errors"
	"flag"
	"fmt"
	"strings"
	"time"

	"kiter/internal/bench"
	"kiter/internal/csdf"
	"kiter/internal/gen"
	"kiter/internal/kperiodic"
	"kiter/internal/rat"
	"kiter/internal/symbexec"
)

func main() {
	var (
		table     = flag.Int("table", 0, "table number (1 or 2, 0 = both)")
		mimic     = flag.Int("mimic", 25, "MimicDSP graph count (paper: 100)")
		lghsdf    = flag.Int("lghsdf", 25, "LgHSDF graph count (paper: 100)")
		lgtrans   = flag.Int("lgtransient", 25, "LgTransient graph count (paper: 100)")
		seed      = flag.Int64("seed", 1, "generator seed")
		symBudget = flag.Int64("symbolic-budget", 20_000_000, "symbolic execution event budget")
		expNodes  = flag.Int64("expansion-nodes", 2_000_000, "expansion node budget")
		bounded   = flag.Bool("bounded", true, "include the fixed-buffer-size section of Table 2")
	)
	flag.Parse()
	lim := bench.Limits{SymbolicMaxEvents: *symBudget, ExpansionMaxNodes: *expNodes}
	if *table == 0 || *table == 1 {
		table1(*mimic, *lghsdf, *lgtrans, *seed, lim)
	}
	if *table == 0 || *table == 2 {
		table2(lim, *bounded)
	}
}

func table1(mimic, lghsdf, lgtrans int, seed int64, lim bench.Limits) {
	fmt.Println("Table 1: average computation time of optimal throughput evaluation methods (SDFG)")
	fmt.Printf("%-12s %7s %14s %14s %22s %12s %12s %12s\n",
		"Category", "Graphs", "Tasks m/a/M", "Chans m/a/M", "Σq min/avg/max",
		"K-Iter", "expansion", "symbolic")
	for _, suite := range bench.Table1Suites(mimic, lghsdf, lgtrans, seed) {
		st := bench.Stats(suite.Graphs)
		ki := bench.Summarize(suite.Graphs, bench.MethodKIter, lim, nil)
		ex := bench.Summarize(suite.Graphs, bench.MethodExpansion, lim, nil)
		sy := bench.Summarize(suite.Graphs, bench.MethodSymbolic, lim, nil)
		fmt.Printf("%-12s %7d %14s %14s %22s %12s %12s %12s\n",
			suite.Name, st.Graphs,
			fmt.Sprintf("%d/%d/%d", st.TaskMin, st.TaskAvg, st.TaskMax),
			fmt.Sprintf("%d/%d/%d", st.ChanMin, st.ChanAvg, st.ChanMax),
			fmt.Sprintf("%s/%s/%s", st.SumQMin, st.SumQAvg, st.SumQMax),
			meanOrSkip(ki), meanOrSkip(ex), meanOrSkip(sy))
	}
	fmt.Println()
}

func meanOrSkip(s bench.MethodSummary) string {
	switch {
	case s.Ran == 0 && s.Skipped > 0:
		return "skipped"
	case s.Ran == 0:
		return "-"
	case s.Skipped > 0:
		return fmt.Sprintf("%s(*%d)", fmtDur(s.Mean), s.Skipped)
	default:
		return fmtDur(s.Mean)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}

func table2(lim bench.Limits, bounded bool) {
	fmt.Println("Table 2: periodic [4] vs K-Iter vs symbolic execution [16] (CSDFG)")
	fmt.Printf("%-22s %6s %8s %14s | %18s | %18s | %18s\n",
		"Application", "Tasks", "Buffers", "Σq", "periodic", "K-Iter", "symbolic")
	sections := []struct {
		title   string
		bounded bool
	}{{"no buffer size", false}}
	if bounded {
		sections = append(sections, struct {
			title   string
			bounded bool
		}{"fixed buffer size", true})
	}
	specs := append(gen.IndustrialSpecs(), gen.SyntheticSpecs()...)
	for _, sec := range sections {
		fmt.Printf("--- %s ---\n", sec.title)
		for _, spec := range specs {
			if !sec.bounded && strings.HasPrefix(spec.Name, "graph") {
				continue // paper lists the synthetic graphs once, bounded
			}
			var g *csdf.Graph
			var err error
			if sec.bounded {
				g, err = gen.IndustrialBounded(spec)
			} else {
				g, err = gen.Industrial(spec)
			}
			if err != nil {
				fmt.Printf("%-22s generation failed: %v\n", spec.Name, err)
				continue
			}
			printT2Row(spec.Name, g, lim)
		}
	}
	fmt.Println()
}

func printT2Row(name string, g *csdf.Graph, lim bench.Limits) {
	sq := "-"
	if s, err := g.SumRepetition(); err == nil {
		sq = s.String()
	}
	// K-Iter supplies the reference optimum.
	ki := bench.Run(g, bench.MethodKIter, lim)
	var ref rat.Rat
	if ki.Err == nil {
		ref = ki.Period
	}
	pe := bench.Run(g, bench.MethodPeriodic, lim)
	sy := bench.Run(g, bench.MethodSymbolic, lim)
	fmt.Printf("%-22s %6d %8d %14s | %18s | %18s | %18s\n",
		name, g.NumTasks(), g.NumBuffers(), sq,
		cellWithOpt(pe, ref), cellWithOpt(ki, ref), cellWithOpt(sy, ref))
}

// cellWithOpt formats "optimality% time" like the paper's Table 2.
func cellWithOpt(out bench.Outcome, ref rat.Rat) string {
	if out.Err != nil {
		var tooLarge *kperiodic.ErrTooLarge
		switch {
		case out.Err == symbexec.ErrBudget, errors.As(out.Err, &tooLarge):
			return "budget"
		case isInfeasible(out.Err):
			return "N/S " + fmtDur(out.Elapsed)
		default:
			return "err"
		}
	}
	opt := "??%"
	if ref.Sign() > 0 && out.Period.Sign() > 0 {
		opt = fmt.Sprintf("%.0f%%", 100*ref.Div(out.Period).Float())
	}
	return fmt.Sprintf("%s %s", opt, fmtDur(out.Elapsed))
}

func isInfeasible(err error) bool {
	if _, ok := err.(*kperiodic.ErrInfeasibleK); ok {
		return true
	}
	if _, ok := err.(*kperiodic.DeadlockError); ok {
		return true
	}
	return err == symbexec.ErrDeadlock
}
