package main

import (
	"bytes"
	"testing"

	"kiter/internal/sdf3x"
	"kiter/internal/sweep"
)

// TestTemplatesRenderValidBodies pins the template machinery end to end:
// every size bucket's analyze body must round-trip through the same graph
// decoder kiterd uses, and every sweep body through the server's spec
// parser and compiler — so a workload change that produces 400s shows up
// here, not as a mysteriously error-heavy bench run.
func TestTemplatesRenderValidBodies(t *testing.T) {
	for bucket, n := range bucketTasks {
		tmpl, err := newBodyTemplate(bucket, n, 4)
		if err != nil {
			t.Fatalf("%s: %v", bucket, err)
		}
		g, err := sdf3x.ReadJSON(bytes.NewReader(tmpl.analyzeBody(12345)))
		if err != nil {
			t.Fatalf("%s analyze body: %v", bucket, err)
		}
		if got := len(g.Tasks()); got != n {
			t.Fatalf("%s analyze body has %d tasks, want %d", bucket, got, n)
		}
		spec, err := sweep.ParseSpec(tmpl.sweepBody(12345))
		if err != nil {
			t.Fatalf("%s sweep body: %v", bucket, err)
		}
		spec.Method = "kiter"
		x, err := sweep.Compile(spec, false)
		if err != nil {
			t.Fatalf("%s sweep compile: %v", bucket, err)
		}
		if got := x.Total(); got != 4 {
			t.Fatalf("%s sweep compiles to %d scenarios, want 4", bucket, got)
		}
	}
}

// TestColdBodiesAreDistinct asserts cold fingerprints never repeat —
// the property that makes -warm-ratio the cache-hit dial.
func TestColdBodiesAreDistinct(t *testing.T) {
	wl, err := newWorkload("analyze", "tiny", 0, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		req := wl.pick()
		if req.warm {
			t.Fatal("warm request with -warm-ratio 0")
		}
		if seen[string(req.body)] {
			t.Fatalf("cold body repeated at pick %d", i)
		}
		seen[string(req.body)] = true
	}
}

// TestWarmPoolIsStable asserts warm bodies draw from a fixed pool: with a
// pool of k fingerprints, an all-warm run produces at most k distinct
// bodies, each a guaranteed server-side cache hit after its first use.
func TestWarmPoolIsStable(t *testing.T) {
	const pool = 4
	wl, err := newWorkload("analyze", "tiny", 1, pool, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		req := wl.pick()
		if !req.warm {
			t.Fatal("cold request with -warm-ratio 1")
		}
		seen[string(req.body)] = true
	}
	if len(seen) > pool {
		t.Fatalf("all-warm run produced %d distinct bodies, want <= %d", len(seen), pool)
	}
}

// TestMixAndWarmRatioHonored checks the request mix statistically: with a
// seeded RNG over 2000 picks the endpoint split and warm fraction must
// land near their configured weights.
func TestMixAndWarmRatioHonored(t *testing.T) {
	wl, err := newWorkload("analyze=3,sweep=1", "tiny=1,small=1", 0.5, 8, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	const picks = 2000
	var analyze, warm int
	for i := 0; i < picks; i++ {
		req := wl.pick()
		if req.endpoint == "/analyze" {
			analyze++
		}
		if req.warm {
			warm++
		}
	}
	if f := float64(analyze) / picks; f < 0.70 || f > 0.80 {
		t.Fatalf("analyze fraction = %.3f, want ~0.75", f)
	}
	if f := float64(warm) / picks; f < 0.45 || f > 0.55 {
		t.Fatalf("warm fraction = %.3f, want ~0.5", f)
	}
}

func TestParseWeightsRejectsUnknownAndEmpty(t *testing.T) {
	if _, err := newWorkload("analyze=1,frobnicate=2", "tiny", 0.5, 1, 1, 1); err == nil {
		t.Fatal("unknown mix component accepted")
	}
	if _, err := newWorkload("analyze", "huge=3", 0.5, 1, 1, 1); err == nil {
		t.Fatal("unknown size bucket accepted")
	}
	if _, err := newWorkload("analyze=0", "tiny", 0.5, 1, 1, 1); err == nil {
		t.Fatal("all-zero mix accepted")
	}
	if _, err := newWorkload("analyze", "tiny", 1.5, 1, 1, 1); err == nil {
		t.Fatal("warm ratio > 1 accepted")
	}
}
