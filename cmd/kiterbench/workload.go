package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"kiter/internal/csdf"
	"kiter/internal/sdf3x"
)

// sentinelDur is the duration stamped on task t0 of every template graph.
// Bodies are rendered by splicing a per-request duration into the one spot
// where this literal appears, so generating a cold request costs two copies
// and an itoa instead of a graph build + JSON encode on the hot path.
const sentinelDur = 86400077

// bucketTasks maps workload size buckets onto ring lengths aligned with the
// engine's race-category task-count boundaries (tiny ≤4, small ≤16,
// medium ≤64, large >64), so a mixed run exercises every portfolio tier.
var bucketTasks = map[string]int{
	"tiny":   4,
	"small":  16,
	"medium": 64,
	"large":  128,
}

// ringGraph builds a homogeneous ring of n named unit-rate tasks t0…t(n-1)
// with n tokens on the closing arc. All durations are 10 except t0, which
// carries d0: the single knob that makes request fingerprints distinct
// without changing the solver's work per request.
func ringGraph(n int, d0 int64) *csdf.Graph {
	g := csdf.NewGraph(fmt.Sprintf("bench-ring-%d", n))
	ids := make([]csdf.TaskID, n)
	for i := range ids {
		d := int64(10)
		if i == 0 {
			d = d0
		}
		ids[i] = g.AddSDFTask(fmt.Sprintf("t%d", i), d)
	}
	for i := 0; i < n-1; i++ {
		g.AddSDFBuffer(fmt.Sprintf("b%d", i), ids[i], ids[i+1], 1, 1, 0)
	}
	g.AddSDFBuffer("loop", ids[n-1], ids[0], 1, 1, int64(n))
	return g
}

// bodyTemplate holds the pre-rendered request bodies for one size bucket,
// split at the sentinel duration.
type bodyTemplate struct {
	bucket                  string
	analyzePre, analyzePost []byte
	sweepPre, sweepPost     []byte
}

func newBodyTemplate(bucket string, tasks, sweepPoints int) (*bodyTemplate, error) {
	var buf bytes.Buffer
	if err := sdf3x.WriteJSON(&buf, ringGraph(tasks, sentinelDur)); err != nil {
		return nil, err
	}
	graph := bytes.TrimSpace(buf.Bytes())
	sentinel := []byte(strconv.Itoa(sentinelDur))
	parts := bytes.Split(graph, sentinel)
	if len(parts) != 2 {
		return nil, fmt.Errorf("sentinel duration appears %d times in %s template, want 1", len(parts)-1, bucket)
	}
	// The sweep spec varies t1's duration over sweepPoints values, so one
	// /sweep request fans out into sweepPoints scenario solves server-side.
	sweepTail := fmt.Sprintf(`,"parameters":[{"name":"d1","target":{"kind":"duration","task":"t1"},"range":{"from":10,"to":%d}}]}`,
		10+int64(sweepPoints)-1)
	return &bodyTemplate{
		bucket:      bucket,
		analyzePre:  parts[0],
		analyzePost: append([]byte(nil), parts[1]...),
		sweepPre:    append([]byte(`{"base":`), parts[0]...),
		sweepPost:   append(append([]byte(nil), parts[1]...), sweepTail...),
	}, nil
}

func render(pre, post []byte, d0 int64) []byte {
	d := strconv.AppendInt(nil, d0, 10)
	out := make([]byte, 0, len(pre)+len(d)+len(post))
	out = append(out, pre...)
	out = append(out, d...)
	return append(out, post...)
}

func (t *bodyTemplate) analyzeBody(d0 int64) []byte { return render(t.analyzePre, t.analyzePost, d0) }
func (t *bodyTemplate) sweepBody(d0 int64) []byte   { return render(t.sweepPre, t.sweepPost, d0) }

// weighted is one name=weight entry of a -mix or -sizes flag.
type weighted struct {
	name   string
	weight int
}

// parseWeights parses "a=3,b=1" against a set of allowed names, dropping
// zero-weight entries so "-sizes tiny=1,large=0" reads naturally.
func parseWeights(s string, allowed func(string) bool) ([]weighted, error) {
	var out []weighted
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, found := strings.Cut(part, "=")
		w := 1
		if found {
			var err error
			if w, err = strconv.Atoi(strings.TrimSpace(val)); err != nil || w < 0 {
				return nil, fmt.Errorf("weight %q: want name=nonNegativeInt", part)
			}
		}
		name = strings.TrimSpace(name)
		if !allowed(name) {
			return nil, fmt.Errorf("unknown workload component %q", name)
		}
		if w > 0 {
			out = append(out, weighted{name, w})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no non-zero weights in %q", s)
	}
	return out, nil
}

func pickWeighted(rng *rand.Rand, ws []weighted) string {
	total := 0
	for _, w := range ws {
		total += w.weight
	}
	n := rng.Intn(total)
	for _, w := range ws {
		if n < w.weight {
			return w.name
		}
		n -= w.weight
	}
	return ws[len(ws)-1].name
}

// benchReq is one generated request: the endpoint path, a ready-to-send
// body, and whether it came from the warm pool (expected cache hit after
// the pool's first pass).
type benchReq struct {
	endpoint string // "/analyze" or "/sweep"
	bucket   string
	warm     bool
	body     []byte
}

// workload generates the request mix. Warm requests draw byte-identical
// bodies from a fixed pool, so after one pass every warm fingerprint is
// resident in the server's memo cache; cold requests stamp a monotonically
// increasing duration, so each is a guaranteed miss. -warm-ratio therefore
// dials the steady-state cache-hit ratio directly.
type workload struct {
	mu        sync.Mutex
	rng       *rand.Rand
	coldSeq   atomic.Int64
	mix       []weighted
	sizes     []weighted
	warmRatio float64
	templates map[string]*bodyTemplate
	// warmAnalyze[bucket][i] and warmSweep[bucket][i] are the pre-rendered
	// warm pools.
	warmAnalyze map[string][][]byte
	warmSweep   map[string][][]byte
}

func newWorkload(mix, sizes string, warmRatio float64, warmPool, sweepPoints int, seed int64) (*workload, error) {
	if warmRatio < 0 || warmRatio > 1 {
		return nil, fmt.Errorf("-warm-ratio %v out of [0,1]", warmRatio)
	}
	if warmPool < 1 {
		warmPool = 1
	}
	if sweepPoints < 1 {
		sweepPoints = 1
	}
	mixW, err := parseWeights(mix, func(n string) bool { return n == "analyze" || n == "sweep" })
	if err != nil {
		return nil, fmt.Errorf("-mix: %w", err)
	}
	sizeW, err := parseWeights(sizes, func(n string) bool { _, ok := bucketTasks[n]; return ok })
	if err != nil {
		return nil, fmt.Errorf("-sizes: %w", err)
	}
	sort.Slice(sizeW, func(i, j int) bool { return bucketTasks[sizeW[i].name] < bucketTasks[sizeW[j].name] })

	w := &workload{
		rng:         rand.New(rand.NewSource(seed)),
		mix:         mixW,
		sizes:       sizeW,
		warmRatio:   warmRatio,
		templates:   map[string]*bodyTemplate{},
		warmAnalyze: map[string][][]byte{},
		warmSweep:   map[string][][]byte{},
	}
	w.coldSeq.Store(1_000_000)
	for _, s := range sizeW {
		tmpl, err := newBodyTemplate(s.name, bucketTasks[s.name], sweepPoints)
		if err != nil {
			return nil, err
		}
		w.templates[s.name] = tmpl
		for i := 0; i < warmPool; i++ {
			d0 := int64(101 + i)
			w.warmAnalyze[s.name] = append(w.warmAnalyze[s.name], tmpl.analyzeBody(d0))
			w.warmSweep[s.name] = append(w.warmSweep[s.name], tmpl.sweepBody(d0))
		}
	}
	return w, nil
}

// pick draws the next request. Safe for concurrent use.
func (w *workload) pick() benchReq {
	w.mu.Lock()
	kind := pickWeighted(w.rng, w.mix)
	bucket := pickWeighted(w.rng, w.sizes)
	warm := w.rng.Float64() < w.warmRatio
	var warmIdx int
	if warm {
		warmIdx = w.rng.Intn(len(w.warmAnalyze[bucket]))
	}
	w.mu.Unlock()

	req := benchReq{bucket: bucket, warm: warm}
	switch kind {
	case "analyze":
		req.endpoint = "/analyze"
		if warm {
			req.body = w.warmAnalyze[bucket][warmIdx]
		} else {
			req.body = w.templates[bucket].analyzeBody(w.coldSeq.Add(1))
		}
	default:
		req.endpoint = "/sweep"
		if warm {
			req.body = w.warmSweep[bucket][warmIdx]
		} else {
			req.body = w.templates[bucket].sweepBody(w.coldSeq.Add(1))
		}
	}
	return req
}
