package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// stubKiterd emulates the serve path's response shapes: compact /analyze
// replies with a cacheHit flag, /sweep NDJSON streams, plus the shed and
// drain status ladder — so loop and recorder behavior is tested without
// booting a real engine.
func stubKiterd(t *testing.T, hitEvery, shedEvery int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var seq atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/analyze", func(w http.ResponseWriter, r *http.Request) {
		n := seq.Add(1)
		if shedEvery > 0 && n%int64(shedEvery) == 0 {
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		hit := hitEvery > 0 && n%int64(hitEvery) == 0
		fmt.Fprintf(w, `{"result":{"throughput":0.1,"cacheHit":%v,"deduped":false}}`+"\n", hit)
	})
	mux.HandleFunc("/sweep", func(w http.ResponseWriter, r *http.Request) {
		seq.Add(1)
		for i := 0; i < 3; i++ {
			fmt.Fprintf(w, `{"scenario":%d,"result":{"cacheHit":%v}}`+"\n", i, i == 0)
		}
		fmt.Fprintln(w, `{"envelope":{"scenarios":3}}`)
	})
	mux.HandleFunc("/draining", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "draining: not accepting work", http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &seq
}

func testLoopConfig(t *testing.T, ts *httptest.Server, warmup, duration time.Duration) loopConfig {
	t.Helper()
	wl, err := newWorkload("analyze=3,sweep=1", "tiny", 0.5, 4, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	return loopConfig{
		client:   &http.Client{Timeout: 5 * time.Second},
		base:     ts.URL,
		wl:       wl,
		warmup:   warmup,
		duration: duration,
	}
}

// TestClosedLoopRecords drives the closed loop against the stub and checks
// the whole chain: warmup discard, per-endpoint accounting, shed counting,
// cache-hit parsing (from both single replies and NDJSON streams), and the
// derived cache-adjusted throughput.
func TestClosedLoopRecords(t *testing.T) {
	ts, _ := stubKiterd(t, 2, 10)
	cfg := testLoopConfig(t, ts, 50*time.Millisecond, 400*time.Millisecond)
	rec := newRecorder()
	window := closedLoop(cfg, rec, 4)
	if window < cfg.duration {
		t.Fatalf("window %v shorter than configured duration %v", window, cfg.duration)
	}
	run := buildRun("closed", rec, window)
	if run.Requests < 20 {
		t.Fatalf("only %d requests recorded in %v", run.Requests, window)
	}
	if run.Rps <= 0 {
		t.Fatal("rps not computed")
	}
	analyze := findEndpoint(t, &run, "/analyze")
	sweep := findEndpoint(t, &run, "/sweep")
	if analyze.Requests == 0 || sweep.Requests == 0 {
		t.Fatalf("mix not exercised: analyze=%d sweep=%d", analyze.Requests, sweep.Requests)
	}
	if analyze.Shed == 0 {
		t.Fatal("stub sheds every 10th request but none recorded")
	}
	if analyze.ByStatus["429"] != analyze.Shed {
		t.Fatalf("by_status[429] = %d, shed = %d", analyze.ByStatus["429"], analyze.Shed)
	}
	// Stub: every sweep stream carries 1 hit + 2 misses; analyze alternates.
	if sweep.CacheHits == 0 || sweep.CacheMisses != 2*sweep.CacheHits {
		t.Fatalf("sweep stream hit parsing off: hits=%d misses=%d", sweep.CacheHits, sweep.CacheMisses)
	}
	if run.CacheHitRatio <= 0 || run.CacheHitRatio >= 1 {
		t.Fatalf("cache hit ratio = %v, want in (0,1)", run.CacheHitRatio)
	}
	if run.CacheAdjustedRps >= run.Rps || run.CacheAdjustedRps <= 0 {
		t.Fatalf("cache-adjusted rps %v not discounted from %v", run.CacheAdjustedRps, run.Rps)
	}
	if run.Overall.P99Ms < run.Overall.P50Ms {
		t.Fatalf("p99 %vms < p50 %vms", run.Overall.P99Ms, run.Overall.P50Ms)
	}
	if run.Overall.MaxMs <= 0 {
		t.Fatal("max latency not recorded")
	}
}

// TestOpenLoopPacing checks the open loop hits a rate in the neighborhood
// of the target against a fast stub, and that ramp + warmup don't leak
// pre-window samples into the recorder.
func TestOpenLoopPacing(t *testing.T) {
	ts, _ := stubKiterd(t, 2, 0)
	cfg := testLoopConfig(t, ts, 100*time.Millisecond, 500*time.Millisecond)
	rec := newRecorder()
	window, dropped := openLoop(cfg, rec, 400, 100*time.Millisecond, 256)
	run := buildRun("open", rec, window)
	// 400 rps over a 0.5s window ≈ 200 requests; allow generous slack for
	// scheduler jitter on loaded CI machines.
	if run.Requests < 100 || run.Requests > 260 {
		t.Fatalf("open loop recorded %d requests for a 400rps × 0.5s window", run.Requests)
	}
	if dropped > run.Requests/10 {
		t.Fatalf("%d dropped ticks against an instant stub", dropped)
	}
}

// TestTransportErrorsAndDrainClassified points the loop at a dead port and
// the drain status at the classifier directly.
func TestTransportErrorsAndDrainClassified(t *testing.T) {
	if got := classify(0, nil); got != "error" {
		t.Fatalf("transport failure classified %q", got)
	}
	if got := classify(http.StatusServiceUnavailable, []byte("draining: shutdown")); got != "drained" {
		t.Fatalf("draining 503 classified %q", got)
	}
	if got := classify(http.StatusServiceUnavailable, []byte("queue full")); got != "shed" {
		t.Fatalf("overload 503 classified %q", got)
	}
	if got := classify(http.StatusTooManyRequests, nil); got != "shed" {
		t.Fatalf("429 classified %q", got)
	}
	if got := classify(http.StatusBadRequest, nil); got != "error" {
		t.Fatalf("400 classified %q", got)
	}

	wl, err := newWorkload("analyze", "tiny", 0, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 500 * time.Millisecond}
	s := runOne(client, "http://127.0.0.1:1", wl.pick(), time.Now())
	if s.class != "error" || s.status != 0 {
		t.Fatalf("dead target gave class=%q status=%d, want error/0", s.class, s.status)
	}
	rec := newRecorder()
	rec.add(s)
	run := buildRun("closed", rec, time.Second)
	ep := findEndpoint(t, &run, "/analyze")
	if ep.Errors != 1 || ep.ByStatus["transport-error"] != 1 {
		t.Fatalf("transport error not accounted: %+v", ep)
	}
}

func findEndpoint(t *testing.T, run *RunResult, name string) EndpointResult {
	t.Helper()
	for _, ep := range run.Endpoints {
		if ep.Endpoint == name {
			return ep
		}
	}
	t.Fatalf("endpoint %s missing from run (have %v)", name, run.Endpoints)
	return EndpointResult{}
}
