package main

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"kiter/internal/telemetry"
)

// sample is one completed request as seen by the recorder.
type sample struct {
	endpoint string
	status   int // 0 = transport error (dial/timeout/reset)
	class    string
	latency  time.Duration
	hits     int    // "cacheHit":true occurrences in the response
	misses   int    // "cacheHit":false occurrences
	reqID    string // server's X-Request-ID echo; empty on transport errors
}

// classify buckets a response for the error/shed/drain accounting:
// 429 and non-draining 503s are the server's load-shedding ladder, a 503
// whose body says "draining" is the graceful-shutdown path, and anything
// else non-2xx (or a transport failure, status 0) is an error.
func classify(status int, body []byte) string {
	switch {
	case status >= 200 && status < 300:
		return "ok"
	case status == http.StatusTooManyRequests:
		return "shed"
	case status == http.StatusServiceUnavailable:
		if bytes.Contains(body, []byte("draining")) {
			return "drained"
		}
		return "shed"
	default:
		return "error"
	}
}

var (
	hitMarker  = []byte(`"cacheHit":true`)
	missMarker = []byte(`"cacheHit":false`)
)

// runOne sends the request and reads the full response (for /sweep that is
// the whole NDJSON stream, so its latency is stream-completion latency).
// Latency is measured from sched, not from the actual send: under an
// open-loop pacer that charges any client-side queuing delay to the
// request, avoiding coordinated omission. Closed-loop callers pass the
// send time itself.
func runOne(client *http.Client, base string, req benchReq, sched time.Time) sample {
	s := sample{endpoint: req.endpoint}
	hreq, err := http.NewRequest(http.MethodPost, base+req.endpoint, bytes.NewReader(req.body))
	if err != nil {
		s.class, s.latency = "error", time.Since(sched)
		return s
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		s.class, s.latency = "error", time.Since(sched)
		return s
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	s.latency = time.Since(sched)
	s.status = resp.StatusCode
	s.reqID = resp.Header.Get("X-Request-ID")
	s.class = classify(resp.StatusCode, body)
	if s.class == "ok" {
		s.hits = bytes.Count(body, hitMarker)
		s.misses = bytes.Count(body, missMarker)
	}
	return s
}

// epStats accumulates one endpoint's samples. Latencies reuse the
// telemetry histogram machinery (8 sub-buckets per octave, ~6% relative
// resolution) so quantiles come from the same estimator the server's
// /metrics endpoint exposes.
type epStats struct {
	hist     *telemetry.Histogram
	requests uint64
	ok       uint64
	errors   uint64
	shed     uint64
	drained  uint64
	hits     uint64
	misses   uint64
	max      time.Duration
	byStatus map[string]uint64
	// failedIDs samples the first few failed requests' X-Request-ID echoes
	// — enough to pull the matching server traces after a bad run, bounded
	// so a total outage doesn't accumulate one string per failure.
	failedIDs []string
}

// maxFailedIDSamples bounds the per-endpoint failed-request-ID sample.
const maxFailedIDSamples = 8

var benchBuckets = telemetry.LogLinearBuckets(1e-6, 27, 8)

func newEpStats() *epStats {
	return &epStats{
		hist:     telemetry.NewHistogram("kiterbench_latency_seconds", benchBuckets),
		byStatus: map[string]uint64{},
	}
}

// recorder aggregates samples per endpoint. Samples that started inside
// the warmup window are never offered to it, so everything here is
// steady-state.
type recorder struct {
	mu  sync.Mutex
	eps map[string]*epStats
}

func newRecorder() *recorder { return &recorder{eps: map[string]*epStats{}} }

func (r *recorder) add(s sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ep := r.eps[s.endpoint]
	if ep == nil {
		ep = newEpStats()
		r.eps[s.endpoint] = ep
	}
	ep.requests++
	ep.hist.Observe(s.latency.Seconds())
	if s.latency > ep.max {
		ep.max = s.latency
	}
	status := "transport-error"
	if s.status != 0 {
		status = strconv.Itoa(s.status)
	}
	ep.byStatus[status]++
	switch s.class {
	case "ok":
		ep.ok++
		ep.hits += uint64(s.hits)
		ep.misses += uint64(s.misses)
	case "shed":
		ep.shed++
	case "drained":
		ep.drained++
	default:
		ep.errors++
		if s.reqID != "" && len(ep.failedIDs) < maxFailedIDSamples {
			ep.failedIDs = append(ep.failedIDs, s.reqID)
		}
	}
}

// loopConfig is everything a load phase needs beyond its own knob
// (concurrency or target RPS).
type loopConfig struct {
	client   *http.Client
	base     string
	wl       *workload
	warmup   time.Duration
	duration time.Duration
}

// closedLoop runs `concurrency` workers back-to-back until the measured
// window closes: classic fixed-concurrency load, throughput set by the
// server. Returns the measured-window wall time (denominator for RPS).
func closedLoop(cfg loopConfig, rec *recorder, concurrency int) time.Duration {
	start := time.Now()
	warmEnd := start.Add(cfg.warmup)
	deadline := warmEnd.Add(cfg.duration)
	var wg sync.WaitGroup
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t0 := time.Now()
				if !t0.Before(deadline) {
					return
				}
				s := runOne(cfg.client, cfg.base, cfg.wl.pick(), t0)
				if !t0.Before(warmEnd) {
					rec.add(s)
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(warmEnd)
}

// openLoop fires requests on an absolute schedule at targetRps (ramping
// linearly over ramp at the start), independent of response latency: the
// arrival process the server would see from independent clients. In-flight
// requests are capped at maxInflight; a tick that finds the cap exhausted
// is counted as dropped rather than queued, so a saturated server shows up
// as drops + rising latency instead of a silently slower arrival rate.
// Returns the measured window and the dropped-tick count.
func openLoop(cfg loopConfig, rec *recorder, targetRps float64, ramp time.Duration, maxInflight int) (time.Duration, uint64) {
	if maxInflight < 1 {
		maxInflight = 1
	}
	start := time.Now()
	warmEnd := start.Add(cfg.warmup)
	end := warmEnd.Add(cfg.duration)
	sem := make(chan struct{}, maxInflight)
	var wg sync.WaitGroup
	var dropped uint64

	next := start
	for next.Before(end) {
		rate := targetRps
		if t := next.Sub(start); ramp > 0 && t < ramp {
			frac := float64(t) / float64(ramp)
			if frac < 0.05 {
				frac = 0.05
			}
			rate = targetRps * frac
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(sched time.Time) {
				defer wg.Done()
				defer func() { <-sem }()
				s := runOne(cfg.client, cfg.base, cfg.wl.pick(), sched)
				if !sched.Before(warmEnd) {
					rec.add(s)
				}
			}(next)
		default:
			if !next.Before(warmEnd) {
				dropped++
			}
		}
		next = next.Add(time.Duration(float64(time.Second) / rate))
	}
	wg.Wait()
	return time.Since(warmEnd), dropped
}
