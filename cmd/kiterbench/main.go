// Command kiterbench is an HTTP load generator for kiterd's serve path.
// It drives /analyze and /sweep with a configurable mix of graph sizes and
// cold-vs-warm fingerprints (so the server's cache-hit ratio is a dial,
// not an accident), in two modes:
//
//   - closed loop: a fixed number of workers issue requests back-to-back,
//     so throughput is set by the server — the classic saturation probe;
//   - open loop: requests fire on an absolute schedule at a target RPS
//     with a linear ramp, independent of response latency — the arrival
//     process a fleet of independent clients produces. Latency is charged
//     from the scheduled (not actual) send time, so client-side queuing
//     shows up in the tail instead of being coordinated-omission'd away.
//
// Results are written as a BENCH_serve_*.json report with per-endpoint
// p50/p95/p99/p99.9, error/shed/drain rates by status code, and
// cache-hit-adjusted throughput. -slo takes assertions like
// "p99=250ms,errors=0.1%" and the process exits 2 when any run violates
// one, which is what makes it a CI gate rather than a chart generator.
//
// Example:
//
//	kiterbench -target http://127.0.0.1:9090 -mode both \
//	    -concurrency 16 -rps 200 -duration 10s -warmup 2s -ramp 2s \
//	    -mix analyze=9,sweep=1 -sizes tiny=4,small=2,medium=1 \
//	    -warm-ratio 0.7 -slo p99=250ms,errors=0.1% -o BENCH_serve.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("kiterbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target      = fs.String("target", "http://127.0.0.1:9090", "base URL of the kiterd instance (or fleet front) to load")
		mode        = fs.String("mode", "both", "load mode: closed, open, or both")
		concurrency = fs.Int("concurrency", 16, "closed loop: number of back-to-back workers")
		rps         = fs.Float64("rps", 200, "open loop: target request rate after ramp")
		duration    = fs.Duration("duration", 10*time.Second, "measured window per mode (after warmup)")
		warmup      = fs.Duration("warmup", 2*time.Second, "per-mode warmup; samples started inside it are discarded")
		ramp        = fs.Duration("ramp", 2*time.Second, "open loop: linear ramp from ~0 to -rps at the start")
		maxInflight = fs.Int("max-inflight", 0, "open loop: in-flight cap; ticks past it count as dropped (0 = 4×rps, min 64)")
		mix         = fs.String("mix", "analyze=9,sweep=1", "endpoint weights: analyze=N,sweep=M")
		sizes       = fs.String("sizes", "tiny=4,small=2,medium=1", "graph size-bucket weights over tiny,small,medium,large")
		warmRatio   = fs.Float64("warm-ratio", 0.7, "fraction of requests drawn from the warm fingerprint pool [0,1]")
		warmPool    = fs.Int("warm-pool", 32, "distinct warm fingerprints per bucket")
		sweepPoints = fs.Int("sweep-points", 4, "scenarios per /sweep request")
		seed        = fs.Int64("seed", 1, "workload RNG seed")
		timeout     = fs.Duration("timeout", 30*time.Second, "per-request client timeout")
		slo         = fs.String("slo", "", "SLO assertions, e.g. p99=250ms,errors=0.1%,sweep.p95=1s (exit 2 on violation)")
		out         = fs.String("o", "", "write the JSON report here ('' = stdout only)")
		label       = fs.String("label", "serve", "report label")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *mode != "closed" && *mode != "open" && *mode != "both" {
		fmt.Fprintf(stderr, "kiterbench: -mode %q: want closed, open, or both\n", *mode)
		return 1
	}
	rules, err := parseSLO(*slo)
	if err != nil {
		fmt.Fprintln(stderr, "kiterbench:", err)
		return 1
	}
	wl, err := newWorkload(*mix, *sizes, *warmRatio, *warmPool, *sweepPoints, *seed)
	if err != nil {
		fmt.Fprintln(stderr, "kiterbench:", err)
		return 1
	}
	inflight := *maxInflight
	if inflight <= 0 {
		inflight = int(*rps * 4)
		if inflight < 64 {
			inflight = 64
		}
	}

	// The client practices what the cluster-transport fix preaches: idle
	// connections sized to the generator's own parallelism, so the bench
	// measures the server, not its own dialer.
	perHost := *concurrency
	if inflight > perHost {
		perHost = inflight
	}
	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			DialContext:         (&net.Dialer{Timeout: 5 * time.Second, KeepAlive: 30 * time.Second}).DialContext,
			MaxIdleConns:        perHost,
			MaxIdleConnsPerHost: perHost,
			IdleConnTimeout:     90 * time.Second,
		},
	}
	if err := waitReachable(client, *target, 10*time.Second); err != nil {
		fmt.Fprintln(stderr, "kiterbench:", err)
		return 1
	}

	report := Report{
		Label:     *label,
		Target:    *target,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Mix:       *mix,
		Sizes:     *sizes,
		WarmRatio: *warmRatio,
		SLO:       *slo,
	}
	cfg := loopConfig{client: client, base: *target, wl: wl, warmup: *warmup, duration: *duration}

	var modes []string
	switch *mode {
	case "both":
		modes = []string{"closed", "open"}
	default:
		modes = []string{*mode}
	}
	violated := false
	for _, m := range modes {
		rec := newRecorder()
		var runRes RunResult
		switch m {
		case "closed":
			fmt.Fprintf(stderr, "kiterbench: closed loop, %d workers, %v warmup + %v measured\n",
				*concurrency, *warmup, *duration)
			window := closedLoop(cfg, rec, *concurrency)
			runRes = buildRun("closed", rec, window)
			runRes.Concurrency = *concurrency
		case "open":
			fmt.Fprintf(stderr, "kiterbench: open loop, %.0f rps target (%v ramp), %v warmup + %v measured\n",
				*rps, *ramp, *warmup, *duration)
			window, dropped := openLoop(cfg, rec, *rps, *ramp, inflight)
			runRes = buildRun("open", rec, window)
			runRes.TargetRps = *rps
			runRes.RampSeconds = ramp.Seconds()
			runRes.DroppedTicks = dropped
		}
		runRes.WarmupSeconds = warmup.Seconds()
		runRes.SLOViolations = checkSLO(rules, &runRes)
		if len(runRes.SLOViolations) > 0 {
			violated = true
		}
		report.Runs = append(report.Runs, runRes)
		printRun(stdout, &runRes)
	}

	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "kiterbench:", err)
		return 1
	}
	doc = append(doc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			fmt.Fprintln(stderr, "kiterbench:", err)
			return 1
		}
		fmt.Fprintf(stderr, "kiterbench: report written to %s\n", *out)
	} else {
		stdout.Write(doc)
	}
	if violated {
		for _, r := range report.Runs {
			for _, v := range r.SLOViolations {
				fmt.Fprintln(stderr, "kiterbench: SLO violation:", v)
			}
		}
		return 2
	}
	return 0
}

// waitReachable polls the target's /healthz until the server answers any
// HTTP status, so a CI step can start kiterd and kiterbench back-to-back
// without scripting its own readiness loop.
func waitReachable(client *http.Client, target string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := client.Get(target + "/healthz")
		if err == nil {
			resp.Body.Close()
			return nil
		}
		lastErr = err
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("target %s unreachable after %v: %v", target, patience, lastErr)
}

// printRun writes the human-readable summary table for one run.
func printRun(w *os.File, r *RunResult) {
	head := r.Mode
	if r.Mode == "closed" {
		head = fmt.Sprintf("closed loop (%d workers)", r.Concurrency)
	} else if r.TargetRps > 0 {
		head = fmt.Sprintf("open loop (%.0f rps target)", r.TargetRps)
	}
	fmt.Fprintf(w, "\n%s — %d requests in %.1fs: %.1f rps, %.1f%% cache hits, %.1f solve-rps\n",
		head, r.Requests, r.WindowSeconds, r.Rps, r.CacheHitRatio*100, r.CacheAdjustedRps)
	if r.DroppedTicks > 0 {
		fmt.Fprintf(w, "  %d pacer ticks dropped at the in-flight cap (client saturated)\n", r.DroppedTicks)
	}
	fmt.Fprintf(w, "  %-10s %9s %9s %9s %9s %9s %7s %7s %7s\n",
		"endpoint", "p50", "p95", "p99", "p99.9", "max", "ok", "shed", "err")
	rows := append([]EndpointResult{r.Overall}, r.Endpoints...)
	for _, ep := range rows {
		fmt.Fprintf(w, "  %-10s %8.2fms %8.2fms %8.2fms %8.2fms %8.1fms %7d %7d %7d\n",
			ep.Endpoint, ep.P50Ms, ep.P95Ms, ep.P99Ms, ep.P999Ms, ep.MaxMs,
			ep.OK, ep.Shed+ep.Drained, ep.Errors)
	}
	for _, v := range r.SLOViolations {
		fmt.Fprintln(w, "  SLO VIOLATION:", v)
	}
}
