package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// EndpointResult is the per-endpoint slice of a run: request accounting by
// outcome class and status code, cache-hit counts parsed out of the
// response bodies, and the latency quantiles the SLO gate runs against.
// All latencies are milliseconds.
type EndpointResult struct {
	Endpoint      string            `json:"endpoint"`
	Requests      uint64            `json:"requests"`
	OK            uint64            `json:"ok"`
	Errors        uint64            `json:"errors"`
	Shed          uint64            `json:"shed"`
	Drained       uint64            `json:"drained"`
	ErrorRate     float64           `json:"error_rate"`
	ShedRate      float64           `json:"shed_rate"`
	DrainRate     float64           `json:"drain_rate"`
	ByStatus      map[string]uint64 `json:"by_status"`
	CacheHits     uint64            `json:"cache_hits"`
	CacheMisses   uint64            `json:"cache_misses"`
	CacheHitRatio float64           `json:"cache_hit_ratio"`
	P50Ms         float64           `json:"p50_ms"`
	P95Ms         float64           `json:"p95_ms"`
	P99Ms         float64           `json:"p99_ms"`
	P999Ms        float64           `json:"p999_ms"`
	MeanMs        float64           `json:"mean_ms"`
	MaxMs         float64           `json:"max_ms"`
	// FailedRequestIDs samples the X-Request-ID echoes of failed requests
	// (up to 8): the handles to pull the matching server-side traces from
	// GET /debug/traces after a bad run.
	FailedRequestIDs []string `json:"failed_request_ids,omitempty"`
}

// RunResult is one load phase (one mode).
type RunResult struct {
	Mode             string           `json:"mode"` // "closed" or "open"
	Concurrency      int              `json:"concurrency,omitempty"`
	TargetRps        float64          `json:"target_rps,omitempty"`
	WarmupSeconds    float64          `json:"warmup_seconds"`
	RampSeconds      float64          `json:"ramp_seconds,omitempty"`
	WindowSeconds    float64          `json:"window_seconds"`
	Requests         uint64           `json:"requests"`
	Rps              float64          `json:"rps"`
	CacheHitRatio    float64          `json:"cache_hit_ratio"`
	CacheAdjustedRps float64          `json:"cache_adjusted_rps"`
	DroppedTicks     uint64           `json:"dropped_ticks,omitempty"`
	Overall          EndpointResult   `json:"overall"`
	Endpoints        []EndpointResult `json:"endpoints"`
	SLOViolations    []string         `json:"slo_violations,omitempty"`
}

// Report is the BENCH_serve_*.json document, following the label /
// go_version / goarch header conventions of cmd/benchjson.
type Report struct {
	Label     string      `json:"label"`
	Target    string      `json:"target"`
	GoVersion string      `json:"go_version"`
	GOARCH    string      `json:"goarch"`
	Mix       string      `json:"mix"`
	Sizes     string      `json:"sizes"`
	WarmRatio float64     `json:"warm_ratio"`
	SLO       string      `json:"slo,omitempty"`
	Runs      []RunResult `json:"runs"`
}

func ratio(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

func (e *epStats) result(endpoint string) EndpointResult {
	r := EndpointResult{
		Endpoint:      endpoint,
		Requests:      e.requests,
		OK:            e.ok,
		Errors:        e.errors,
		Shed:          e.shed,
		Drained:       e.drained,
		ErrorRate:     ratio(e.errors, e.requests),
		ShedRate:      ratio(e.shed, e.requests),
		DrainRate:     ratio(e.drained, e.requests),
		ByStatus:      e.byStatus,
		CacheHits:     e.hits,
		CacheMisses:   e.misses,
		CacheHitRatio: ratio(e.hits, e.hits+e.misses),
		MaxMs:         float64(e.max) / float64(time.Millisecond),

		FailedRequestIDs: e.failedIDs,
	}
	r.P50Ms = e.hist.Quantile(0.50) * 1e3
	r.P95Ms = e.hist.Quantile(0.95) * 1e3
	r.P99Ms = e.hist.Quantile(0.99) * 1e3
	r.P999Ms = e.hist.Quantile(0.999) * 1e3
	if n := e.hist.Count(); n > 0 {
		r.MeanMs = e.hist.Sum() / float64(n) * 1e3
	}
	return r
}

// buildRun turns a recorder into a RunResult. The overall row merges the
// per-endpoint histograms (identical layouts, so Merge is exact) and the
// cache-hit-adjusted throughput discounts requests answered from the memo
// cache: adjusted = rps × (1 − hitRatio), the rate of actual solves.
func buildRun(mode string, rec *recorder, window time.Duration) RunResult {
	rec.mu.Lock()
	defer rec.mu.Unlock()

	run := RunResult{Mode: mode, WindowSeconds: window.Seconds()}
	overall := newEpStats()
	names := make([]string, 0, len(rec.eps))
	for name := range rec.eps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ep := rec.eps[name]
		run.Endpoints = append(run.Endpoints, ep.result(name))
		_ = overall.hist.Merge(ep.hist)
		overall.requests += ep.requests
		overall.ok += ep.ok
		overall.errors += ep.errors
		overall.shed += ep.shed
		overall.drained += ep.drained
		overall.hits += ep.hits
		overall.misses += ep.misses
		if ep.max > overall.max {
			overall.max = ep.max
		}
		for k, v := range ep.byStatus {
			overall.byStatus[k] += v
		}
		for _, id := range ep.failedIDs {
			if len(overall.failedIDs) < maxFailedIDSamples {
				overall.failedIDs = append(overall.failedIDs, id)
			}
		}
	}
	run.Overall = overall.result("overall")
	run.Requests = overall.requests
	if window > 0 {
		run.Rps = float64(overall.requests) / window.Seconds()
	}
	run.CacheHitRatio = run.Overall.CacheHitRatio
	run.CacheAdjustedRps = run.Rps * (1 - run.CacheHitRatio)
	return run
}

// sloRule is one parsed assertion of a -slo flag.
type sloRule struct {
	endpoint  string  // "" = overall
	metric    string  // p50 p95 p99 p999 errors shed drained
	threshold float64 // seconds for quantiles, fraction for rates
	raw       string
}

// parseSLO parses "p99=250ms,errors=0.1%,analyze.p95=50ms". Quantile
// metrics take a duration; rate metrics take a percentage ("0.1%") or a
// bare fraction ("0.001"). A leading "analyze." or "sweep." scopes the
// rule to that endpoint; unscoped rules check the overall row.
func parseSLO(s string) ([]sloRule, error) {
	var rules []sloRule
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, found := strings.Cut(part, "=")
		if !found {
			return nil, fmt.Errorf("slo %q: want metric=threshold", part)
		}
		rule := sloRule{raw: part, metric: strings.TrimSpace(key)}
		if ep, m, scoped := strings.Cut(rule.metric, "."); scoped {
			if ep != "analyze" && ep != "sweep" {
				return nil, fmt.Errorf("slo %q: unknown endpoint scope %q", part, ep)
			}
			rule.endpoint, rule.metric = "/"+ep, m
		}
		val = strings.TrimSpace(val)
		switch rule.metric {
		case "p50", "p95", "p99", "p999":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("slo %q: %v", part, err)
			}
			rule.threshold = d.Seconds()
		case "errors", "shed", "drained":
			frac := 1.0
			if strings.HasSuffix(val, "%") {
				val, frac = strings.TrimSuffix(val, "%"), 0.01
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("slo %q: %v", part, err)
			}
			rule.threshold = f * frac
		default:
			return nil, fmt.Errorf("slo %q: unknown metric %q", part, rule.metric)
		}
		rules = append(rules, rule)
	}
	return rules, nil
}

// checkSLO evaluates rules against one run and returns a human-readable
// violation per failed rule.
func checkSLO(rules []sloRule, run *RunResult) []string {
	lookup := func(endpoint string) *EndpointResult {
		if endpoint == "" {
			return &run.Overall
		}
		for i := range run.Endpoints {
			if run.Endpoints[i].Endpoint == endpoint {
				return &run.Endpoints[i]
			}
		}
		return nil
	}
	var violations []string
	for _, rule := range rules {
		ep := lookup(rule.endpoint)
		if ep == nil {
			// The mix sent no traffic to the scoped endpoint: the assertion
			// is vacuous, not violated.
			continue
		}
		var got float64
		var unit string
		switch rule.metric {
		case "p50":
			got, unit = ep.P50Ms/1e3, "s"
		case "p95":
			got, unit = ep.P95Ms/1e3, "s"
		case "p99":
			got, unit = ep.P99Ms/1e3, "s"
		case "p999":
			got, unit = ep.P999Ms/1e3, "s"
		case "errors":
			got = ep.ErrorRate
		case "shed":
			got = ep.ShedRate
		case "drained":
			got = ep.DrainRate
		}
		if got > rule.threshold {
			scope := rule.endpoint
			if scope == "" {
				scope = "overall"
			}
			if unit == "s" {
				violations = append(violations, fmt.Sprintf(
					"%s mode %s: %s = %.3fms exceeds %s", run.Mode, scope, rule.metric,
					got*1e3, rule.raw))
			} else {
				violations = append(violations, fmt.Sprintf(
					"%s mode %s: %s = %.4f%% exceeds %s", run.Mode, scope, rule.metric,
					got*100, rule.raw))
			}
		}
	}
	return violations
}
