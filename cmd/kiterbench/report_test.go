package main

import (
	"os"
	"strings"
	"testing"
)

func TestParseSLO(t *testing.T) {
	rules, err := parseSLO("p99=250ms,errors=0.1%,sweep.p95=1s,shed=0.02,analyze.p999=2s")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 5 {
		t.Fatalf("parsed %d rules, want 5", len(rules))
	}
	if rules[0].metric != "p99" || rules[0].threshold != 0.25 || rules[0].endpoint != "" {
		t.Fatalf("p99 rule parsed as %+v", rules[0])
	}
	if rules[1].metric != "errors" || rules[1].threshold != 0.001 {
		t.Fatalf("percent error rule parsed as %+v", rules[1])
	}
	if rules[2].endpoint != "/sweep" || rules[2].threshold != 1.0 {
		t.Fatalf("scoped rule parsed as %+v", rules[2])
	}
	if rules[3].threshold != 0.02 {
		t.Fatalf("bare-fraction rule parsed as %+v", rules[3])
	}
	if rules[4].endpoint != "/analyze" || rules[4].metric != "p999" {
		t.Fatalf("scoped p999 rule parsed as %+v", rules[4])
	}

	for _, bad := range []string{"p98=1ms", "p99=fast", "errors=many", "frontend.p99=1ms", "p99"} {
		if _, err := parseSLO(bad); err == nil {
			t.Fatalf("parseSLO(%q) accepted", bad)
		}
	}
	if rules, err := parseSLO(""); err != nil || len(rules) != 0 {
		t.Fatalf("empty slo: rules=%v err=%v", rules, err)
	}
}

func TestCheckSLO(t *testing.T) {
	run := RunResult{
		Mode: "closed",
		Overall: EndpointResult{
			Endpoint: "overall", P99Ms: 300, P50Ms: 10, ErrorRate: 0.005,
		},
		Endpoints: []EndpointResult{
			{Endpoint: "/analyze", P95Ms: 20, ErrorRate: 0},
		},
	}
	mustRules := func(s string) []sloRule {
		t.Helper()
		rules, err := parseSLO(s)
		if err != nil {
			t.Fatal(err)
		}
		return rules
	}

	v := checkSLO(mustRules("p99=250ms,errors=0.1%"), &run)
	if len(v) != 2 {
		t.Fatalf("want 2 violations, got %v", v)
	}
	if !strings.Contains(v[0], "p99") || !strings.Contains(v[1], "errors") {
		t.Fatalf("violation text: %v", v)
	}
	if v := checkSLO(mustRules("p99=1s,errors=1%,p50=100ms"), &run); len(v) != 0 {
		t.Fatalf("passing run flagged: %v", v)
	}
	if v := checkSLO(mustRules("analyze.p95=10ms"), &run); len(v) != 1 {
		t.Fatalf("scoped rule not applied: %v", v)
	}
	// A rule scoped to an endpoint the mix never hit is vacuous.
	if v := checkSLO(mustRules("sweep.p99=1ms"), &run); len(v) != 0 {
		t.Fatalf("vacuous scoped rule flagged: %v", v)
	}
}

// TestRunExitCodes exercises the binary's contract end to end against the
// stub server: exit 0 with a satisfiable SLO, exit 2 on violation, with
// the report written either way.
func TestRunExitCodes(t *testing.T) {
	ts, _ := stubKiterd(t, 0, 0)
	out := t.TempDir() + "/BENCH_serve_test.json"
	base := []string{
		"-target", ts.URL, "-mode", "closed", "-concurrency", "2",
		"-duration", "200ms", "-warmup", "50ms", "-mix", "analyze",
		"-sizes", "tiny", "-o", out,
	}
	if code := run(append(base, "-slo", "p99=10s,errors=50%"), devNull(t), devNull(t)); code != 0 {
		t.Fatalf("satisfiable SLO exited %d", code)
	}
	if code := run(append(base, "-slo", "p999=1ns"), devNull(t), devNull(t)); code != 2 {
		t.Fatalf("impossible SLO exited %d, want 2", code)
	}
	if code := run([]string{"-slo", "p98=1ms"}, devNull(t), devNull(t)); code != 1 {
		t.Fatal("bad SLO flag accepted")
	}
	if code := run([]string{"-mode", "sideways"}, devNull(t), devNull(t)); code != 1 {
		t.Fatal("bad mode accepted")
	}
}

func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}
